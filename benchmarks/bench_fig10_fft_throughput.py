"""Fig. 10: 1024-pt FFT throughput vs link reconfiguration cost.

Regenerates all four column curves over the full 0-5000 ns range and
checks the shape criteria the paper draws from this figure.
"""

from conftest import save_artifact

from repro.experiments import fig10


def test_fig10_throughput_curves(benchmark):
    series = benchmark(fig10.run)
    at = {c: dict(curve) for c, curve in series.items()}
    # shape criterion 1: more columns win when links are cheap
    assert at[10][0] > at[5][0] > at[2][0] > at[1][0]
    # shape criterion 2: every curve decays monotonically with L
    for curve in series.values():
        values = [v for _, v in curve]
        assert all(b <= a for a, b in zip(values, values[1:]))
    # shape criterion 3: the ordering inverts at the expensive end
    assert at[1][5000] > at[10][5000]
    save_artifact("fig10", fig10.render())
