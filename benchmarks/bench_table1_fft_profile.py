"""Table 1: 1024-point R2FFT process profile (paper vs simulator).

Times the full measurement pass: assembling and executing every stage's
butterfly program plus the copy processes on scratch tiles.
"""

from conftest import save_artifact

from repro.experiments import table1


def test_table1_fft_profile(benchmark):
    rows = benchmark(table1.run)
    assert len(rows) == 12
    # simulator butterflies must land in the published order of magnitude
    for row in rows[:10]:
        assert 500 < row["scaled_ns"] < 20000
    save_artifact("table1", table1.render())
