"""Resilience benchmark: journal overhead, recovery scaling, shed-vs-collapse.

Three deterministic experiments, one machine-readable
``BENCH_resilience.json``:

1. **journal overhead** — replays the ISSUE's 200-job mixed FFT+JPEG
   trace through the sequential :class:`~repro.serve.durability.engine.
   DurableEngine` and compares a *modeled* journaling cost (counted
   appends and bytes priced at buffered-append constants) against the
   simulated fabric makespan.  The acceptance bar is overhead <= 15 %.
2. **recovery scaling** — journals traces of growing length, then
   constructs a fresh engine over each journal (construction *is*
   recovery) and records the counted scan/replay work: records, bytes,
   segments, recovered results, plus a modeled replay time.  Recovery
   work must scale linearly in the journal, never in wall-clock history.
3. **shed vs collapse** — a seeded discrete-event queue simulation at
   5x overload, once with the :class:`~repro.serve.shedding.LoadShedder`
   in front of admission and once with only a bounded queue.  The
   shedder holds p99 queue delay near its target; the naive queue rides
   the admission cap and p99 runs away to the full backlog drain time.

Every quantity in the report is simulated or counted — no wall-clock
time leaks into the JSON, so the committed artifact is byte-identical
across runs and machines.

Run directly (``PYTHONPATH=src python benchmarks/bench_resilience.py``)
or through :func:`run_bench` from the tier-1 smoke test with reduced
sizes.
"""

from __future__ import annotations

import json
from pathlib import Path

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
)

#: Committed-benchmark shapes.
DEFAULT_JOBS = 200
DEFAULT_SEED = 0
DEFAULT_FFT_FRACTION = 0.5
DEFAULT_RECOVERY_LENGTHS = (25, 50, 100, 200)
DEFAULT_ARRIVALS = 2000

#: Modeled journaling constants (page-cache append path, fsync=NEVER):
#: a buffered ``write(2)`` of one framed record plus the per-byte copy.
APPEND_NS = 2_000.0      # syscall + frame bookkeeping per record
BYTE_NS = 0.25           # ~4 GB/s memcpy into the page cache
#: Modeled replay constant: CRC check + JSON decode + fold per record.
REPLAY_NS = 4_000.0

#: Overload simulation shape (simulated seconds, single server).
OVERLOAD_FACTOR = 5.0
SERVICE_S = 0.05
QUEUE_BOUND = 256
SHED_TARGET_S = 0.5
SHED_COLLAPSE_S = 2.0
#: The shedder's hard cap is sized to the delay objective (~1.6x the
#: collapse depth of 40 jobs), not to memory like the naive bound.
SHED_HARD_CAP = 64


def _trace_requests(n_jobs: int, seed: int, fft_fraction: float):
    """A mixed 64-pt-FFT / JPEG-frame trace (production-shaped jobs —
    the chaos harness's 16-pt jobs are sized for crash coverage, not
    for a representative compute/journal ratio)."""
    import numpy as np

    from repro.serve.jobs import JobRequest, fft_spec, jpeg_spec

    rng = np.random.default_rng(seed)
    requests = []
    for index in range(n_jobs):
        if rng.random() < fft_fraction:
            spec = fft_spec(64, 8, 3)
            payload = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        else:
            spec = jpeg_spec(75, False)
            payload = rng.integers(0, 256, size=(8, 8), dtype=np.int64)
        requests.append(
            JobRequest(spec=spec, payload=payload,
                       job_id=f"bench-{index:03d}")
        )
    return requests


def _journal_run(workdir: Path, n_jobs: int, seed: int,
                 fft_fraction: float) -> dict:
    """Replay the trace on a journaled engine; model the append cost."""
    from repro.serve.durability.engine import DurableEngine

    engine = DurableEngine(workdir / f"journal-{n_jobs}")
    for request in _trace_requests(n_jobs, seed, fft_fraction):
        engine.submit(request)
    report = engine.run()
    journal = engine.journal
    journal_ns = journal.appended * APPEND_NS + journal.bytes_written * BYTE_NS
    makespan_ns = report.sim_ns
    engine.close()
    return {
        "jobs": n_jobs,
        "seed": seed,
        "fft_fraction": fft_fraction,
        "records": journal.appended,
        "bytes": journal.bytes_written,
        "segments": len(journal.segments()),
        "rotations": journal.rotations,
        "makespan_ns": makespan_ns,
        "journal_ns": journal_ns,
        "overhead_pct": 100.0 * journal_ns / makespan_ns,
        "model": {"append_ns": APPEND_NS, "byte_ns": BYTE_NS},
    }


def _recovery_point(workdir: Path, n_jobs: int, seed: int,
                    fft_fraction: float) -> dict:
    """Journal one trace, then measure what a cold restart replays."""
    from repro.serve.durability.engine import DurableEngine

    journal_dir = workdir / f"recovery-{n_jobs}"
    engine = DurableEngine(journal_dir)
    for request in _trace_requests(n_jobs, seed, fft_fraction):
        engine.submit(request)
    engine.run()
    engine.close()

    restarted = DurableEngine(journal_dir)
    scan = restarted.scan_report
    replay_bytes = sum(p.stat().st_size for p in restarted.journal.segments())
    point = {
        "jobs": n_jobs,
        "records": scan.records,
        "bytes": replay_bytes,
        "segments": len(restarted.journal.segments()),
        "recovered_finished": restarted.report.recovered_finished,
        "recovered_requeued": restarted.report.recovered_requeued,
        "replay_ns": scan.records * REPLAY_NS + replay_bytes * BYTE_NS,
    }
    restarted.close()
    return point


def _overload_sim(n_arrivals: int, service_s: float, overload: float,
                  shedder, queue_bound: int) -> dict:
    """Seeded discrete-event single-server queue at ``overload`` x."""
    interarrival = service_s / overload
    pending: list[float] = []         # admission times, FIFO
    server_free = 0.0
    waits: list[float] = []
    rejected = {"shed": 0, "admission_cap": 0, "queue_full": 0}

    def start_ready(now: float) -> None:
        nonlocal server_free
        while pending and max(pending[0], server_free) <= now:
            admit_t = pending.pop(0)
            start = max(admit_t, server_free)
            wait = start - admit_t
            waits.append(wait)
            if shedder is not None:
                shedder.observe(wait)
            server_free = start + service_s

    for index in range(n_arrivals):
        now = index * interarrival
        start_ready(now)
        depth = len(pending)
        if shedder is not None:
            decision = shedder.decide(depth)
            if not decision.admit:
                rejected[decision.reason] += 1
                continue
        elif queue_bound and depth >= queue_bound:
            rejected["queue_full"] += 1
            continue
        pending.append(now)
    start_ready(float("inf"))

    waits.sort()
    completed = len(waits)
    p50 = waits[int(0.50 * (completed - 1))] if completed else 0.0
    p99 = waits[int(0.99 * (completed - 1))] if completed else 0.0
    return {
        "policy": "shed" if shedder is not None else "queue_only",
        "arrivals": n_arrivals,
        "completed": completed,
        "rejected": rejected,
        "rejected_total": sum(rejected.values()),
        "mean_wait_s": sum(waits) / completed if completed else 0.0,
        "p50_wait_s": p50,
        "p99_wait_s": p99,
    }


def _overload_section(n_arrivals: int) -> dict:
    from repro.serve.shedding import LoadShedder

    shedder = LoadShedder(
        target_delay_s=SHED_TARGET_S,
        collapse_delay_s=SHED_COLLAPSE_S,
        hard_cap=SHED_HARD_CAP,
        seed=0,
    )
    shed = _overload_sim(
        n_arrivals, SERVICE_S, OVERLOAD_FACTOR, shedder, QUEUE_BOUND
    )
    naive = _overload_sim(
        n_arrivals, SERVICE_S, OVERLOAD_FACTOR, None, QUEUE_BOUND
    )
    return {
        "overload_factor": OVERLOAD_FACTOR,
        "service_s": SERVICE_S,
        "queue_bound": QUEUE_BOUND,
        "shed_hard_cap": SHED_HARD_CAP,
        "target_delay_s": SHED_TARGET_S,
        "collapse_delay_s": SHED_COLLAPSE_S,
        "policies": [shed, naive],
        "p99_ratio": (
            naive["p99_wait_s"] / shed["p99_wait_s"]
            if shed["p99_wait_s"] > 0
            else float("inf")
        ),
    }


def run_bench(
    n_jobs: int = DEFAULT_JOBS,
    recovery_lengths: tuple[int, ...] = DEFAULT_RECOVERY_LENGTHS,
    n_arrivals: int = DEFAULT_ARRIVALS,
    seed: int = DEFAULT_SEED,
    fft_fraction: float = DEFAULT_FFT_FRACTION,
    output: Path | str = DEFAULT_OUTPUT,
    workdir: Path | str | None = None,
) -> dict:
    """Run all three experiments, write ``BENCH_resilience.json``."""
    import tempfile

    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-resilience-") as tmp:
            return run_bench(
                n_jobs=n_jobs,
                recovery_lengths=recovery_lengths,
                n_arrivals=n_arrivals,
                seed=seed,
                fft_fraction=fft_fraction,
                output=output,
                workdir=tmp,
            )
    workdir = Path(workdir)
    report = {
        "journal": _journal_run(workdir, n_jobs, seed, fft_fraction),
        "recovery": [
            _recovery_point(workdir, length, seed, fft_fraction)
            for length in recovery_lengths
        ],
        "overload": _overload_section(n_arrivals),
    }
    output = Path(output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_bench()
    print(f"wrote {DEFAULT_OUTPUT}")
    journal = report["journal"]
    print(
        f"journal   {journal['jobs']} jobs  {journal['records']} records  "
        f"{journal['bytes']} B  overhead {journal['overhead_pct']:.2f}% "
        f"of makespan"
    )
    for point in report["recovery"]:
        print(
            f"recovery  {point['jobs']:4d} jobs -> {point['records']:5d} "
            f"records  {point['segments']} segment(s)  "
            f"replay {point['replay_ns'] / 1e6:.2f} ms (modeled)"
        )
    for entry in report["overload"]["policies"]:
        print(
            f"overload  {entry['policy']:<10}  completed "
            f"{entry['completed']:4d}  rejected {entry['rejected_total']:4d}  "
            f"p99 wait {entry['p99_wait_s']:7.2f} s"
        )
    print(f"p99 ratio (queue_only / shed): "
          f"{report['overload']['p99_ratio']:.1f}x")


if __name__ == "__main__":
    main()
