"""Figs. 13-14: the worked rebalancing example, replayed step by step."""

from conftest import save_artifact

from repro.experiments import fig13_14


def test_fig13_14_example(benchmark):
    result = benchmark(fig13_14.run)
    trace = {s["tiles"]: s for s in result["greedy_trace"]}
    # every annotated value of Fig. 13 reproduces
    assert trace[1]["interval_ns"] == 5100.0
    assert trace[2]["interval_ns"] == 3200.0
    assert trace[3]["interval_ns"] == 1900.0
    assert trace[4]["interval_ns"] == 1800.0
    assert trace[5]["interval_ns"] == 1400.0
    assert "x2" in trace[5]["mapping"]  # the heaviest process duplicated
    save_artifact("fig13_14", fig13_14.render())
