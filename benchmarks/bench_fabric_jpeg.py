"""Fabric-executed JPEG blocks: per-block cost on the simulated tile.

Extension bench: encodes a small frame with shift/DCT/quantize/zigzag
running as tile programs under the epoch runtime, decodes the resulting
JFIF stream, and reports the first-block (cold: programs + data1 over the
ICAP) vs steady-state per-block times.
"""

from conftest import save_artifact

from repro.io.images import natural_like
from repro.kernels.jpeg.decoder import decode_image
from repro.kernels.jpeg.fabric_runner import FabricBlockPipeline


def encode_on_fabric():
    image = natural_like(16, 16, seed=9)
    pipeline = FabricBlockPipeline(quality=75)
    result = pipeline.encode_image(image)
    decoded = decode_image(result.stream)
    assert decoded.shape == image.shape
    return result


def test_fabric_jpeg_blocks(benchmark):
    result = benchmark(encode_on_fabric)
    assert result.blocks == 4
    assert result.first_block_ns > result.steady_block_ns
    save_artifact(
        "fabric_jpeg",
        "Fabric JPEG block pipeline (one tile, q=75)\n"
        f"blocks          : {result.blocks}\n"
        f"first block     : {result.first_block_ns / 1000:.2f} us "
        "(programs + data1 over the ICAP)\n"
        f"steady block    : {result.steady_block_ns / 1000:.2f} us\n"
        f"steady rate     : {result.blocks_per_s:.0f} blocks/s\n"
        f"ICAP traffic    : {result.reconfig_bytes} bytes total",
    )
