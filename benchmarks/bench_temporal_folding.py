"""Temporal folding: Eq. 1's area/runtime trade on the JPEG pipeline.

Extension bench for the paper's core motivation ("temporal partitioning
allows significant area advantages"): fold the ten JPEG processes onto
1..10 tiles and decompose the per-block runtime into Eq. 1's compute (A),
reconfiguration (B) and copy (C) terms.
"""

from conftest import save_artifact

from repro.dse.report import format_table
from repro.mapping.epochs import folding_tradeoff
from repro.pn.profiles import jpeg_process_network


def folding_rows(link_cost_ns: float = 300.0):
    network = jpeg_process_network()
    points = folding_tradeoff(network, [1, 2, 3, 5, 10], link_cost_ns)
    rows = []
    for point in points:
        rows.append(
            {
                "tiles": point.n_tiles,
                "phases": point.phases,
                "A_compute_us": round(point.breakdown.compute_ns / 1000, 1),
                "B_reconfig_us": round(point.breakdown.reconfig_ns / 1000, 1),
                "C_copy_us": round(point.breakdown.copy_ns / 1000, 1),
                "total_us": round(point.runtime_ns / 1000, 1),
                "reconfig_share": round(point.reconfig_share, 3),
            }
        )
    return rows


def test_temporal_folding(benchmark):
    rows = benchmark(folding_rows)
    by_tiles = {r["tiles"]: r for r in rows}
    # the space-mapping extreme reloads nothing
    assert by_tiles[10]["B_reconfig_us"] == 0.0
    # folding pays reconfiguration, monotonically more with fewer tiles
    assert by_tiles[1]["B_reconfig_us"] >= by_tiles[3]["B_reconfig_us"]
    # but stays a modest share of the DCT-dominated block time
    assert by_tiles[1]["reconfig_share"] < 0.2
    save_artifact(
        "temporal_folding",
        "Temporal folding of the JPEG pipeline (Eq. 1, L=300ns)\n"
        + format_table(rows),
    )
