"""Streamed fabric FFT: pipeline fill vs steady state.

Extension bench: runs a batch of transforms through multi-column plans
with dataflow epoch scheduling and reports pipeline latency, steady
interval, and the cold/warm reconfiguration amortization that partial
reconfiguration buys.
"""

import numpy as np
from conftest import save_artifact

from repro.kernels.fft.decompose import FFTPlan
from repro.kernels.fft.runner import FabricFFT


def stream_rows():
    rng = np.random.default_rng(3)
    rows = []
    for cols in (1, 2, 4):
        plan = FFTPlan(16, 4, cols)
        xs = [
            (rng.standard_normal(16) + 1j * rng.standard_normal(16)) * 0.01
            for _ in range(6)
        ]
        runner = FabricFFT(plan, link_cost_ns=0.0)
        stream = runner.run_stream(xs)
        for out, x in zip(stream.outputs, xs):
            assert np.allclose(out, np.fft.fft(x), atol=1e-6)
        rows.append(
            {
                "cols": cols,
                "tiles": plan.n_tiles,
                "latency_us": round(stream.latency_ns / 1000, 2),
                "steady_us": round(stream.steady_interval_ns / 1000, 2),
                "amortization": round(
                    stream.latency_ns / stream.steady_interval_ns, 2
                ),
            }
        )
    return rows


def test_fft_stream(benchmark):
    rows = benchmark(stream_rows)
    steady = {r["cols"]: r["steady_us"] for r in rows}
    assert steady[4] < steady[1]          # columns buy pipelining
    assert all(r["amortization"] > 2 for r in rows)  # residency pays
    from repro.dse.report import format_table

    save_artifact("fft_stream", "Streamed 16-pt fabric FFT (6 transforms, "
                  "L=0ns)\n" + format_table(rows))
