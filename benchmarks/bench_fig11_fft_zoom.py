"""Fig. 11: the crossover zoom of Fig. 10.

The paper reads two thresholds off this view: beyond ~700 ns adding
columns stops helping; beyond ~1100 ns it hurts.  The regenerated band
must overlap those readings.
"""

from conftest import save_artifact

from repro.experiments import fig11


def test_fig11_crossover_region(benchmark):
    series = benchmark(fig11.run)
    lo, hi = fig11.crossover_band(series)
    assert 400 <= lo <= 1100    # "no noticeable benefit" threshold
    assert 800 <= hi <= 1600    # "opposite effect" threshold
    save_artifact("fig11", fig11.render())
