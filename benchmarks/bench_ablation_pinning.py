"""A4: Table 4's instruction pinning ((f) labels) vs no pinning."""

from conftest import save_artifact

from repro.dse.report import format_table
from repro.experiments import ablations


def test_ablation_pinning(benchmark):
    rows = benchmark(ablations.pinning_ablation)
    by_impl = {r["impl"]: r for r in rows}
    # only the over-capacity tiles (impls 1, 5) can benefit
    assert by_impl[1]["slowdown"] > 1.0
    assert by_impl[5]["slowdown"] > 1.0
    assert by_impl[3]["slowdown"] == 1.0
    assert by_impl[4]["slowdown"] == 1.0
    save_artifact(
        "ablation_pinning",
        "A4: instruction pinning\n" + format_table(rows),
    )
