"""Per-kernel benchmark over the dataflow-frontend registry.

For every registered kernel frontend (``fft``, ``jpeg``, ``conv2d``,
``gemm``, ``dsp`` — plus anything a third party registers before
running) this harness serves the same K example payloads three ways
through one warm :func:`repro.serve.sessions.default_session_factory`
session:

* **scalar** — K sequential ``session.run`` calls (the fabric fast
  path, one job per dispatch);
* **batched** — one ``session.run_batch`` dispatch through the
  vector-batched tier;
* **reference** — the frontend's registered host oracle, timed for
  scale (it is also the correctness gate: every batched output must
  pass ``frontend.check_output``, bit-identically for the exact
  kernels).

Writes ``BENCH_kernels.json``::

    [{"kernel": "conv2d", "params": {...}, "k": 32, "exact": true,
      "wall_s_scalar": ..., "wall_s_batched": ..., "wall_s_reference": ...,
      "batch_speedup": ..., "jobs_per_s_batched": ...}, ...]

``batch_speedup`` (scalar wall over batched wall for the same K jobs)
is the regression contract: :data:`SPEEDUP_FLOORS` is enforced by
``main`` (the CI bench job) and re-checked against the committed JSON
by ``tests/test_bench_kernels.py``.

Run directly (``PYTHONPATH=src python benchmarks/bench_kernels.py``);
``--quick`` shrinks K and the repeat count for the CI smoke job.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

FULL_K = 32
QUICK_K = 8

#: Minimum batched-vs-scalar speedup each kernel must hold at the full
#: K.  Floors are deliberately below steady-state measurements (margin
#: for CI noise) but high enough that losing lane replication or cached
#: batch codegen trips them.  ``--quick`` runs skip the floor check —
#: at K=8 the dispatch overhead is not amortized enough to be a fair
#: gate.
SPEEDUP_FLOORS = {
    "fft": 3.0,
    "jpeg": 2.5,
    "conv2d": 1.3,
    "gemm": 1.5,
    "dsp": 1.5,
}


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernel(kind: str, k: int, repeats: int) -> dict:
    """Time one registered kernel scalar vs batched vs reference."""
    from repro.compile.frontends import get_frontend
    from repro.serve.jobs import spec_for
    from repro.serve.sessions import CancelToken, default_session_factory

    frontend = get_frontend(kind)
    params = frontend.canonicalize(None)
    rng = np.random.default_rng(7)
    payloads = [frontend.example_payload(params, rng) for _ in range(k)]

    session = default_session_factory(spec_for(kind))
    cancel = CancelToken()
    session.run(payloads[0], cancel)  # cold setup + program pinning

    wall_scalar = _timed(
        lambda: [session.run(p, cancel) for p in payloads], repeats
    )
    stats = session.run_batch(payloads, cancel)
    wall_batched = _timed(
        lambda: session.run_batch(payloads, cancel), repeats
    )
    wall_reference = _timed(
        lambda: [frontend.reference(params, p) for p in payloads], repeats
    )

    for payload, stat in zip(payloads, stats):
        frontend.check_output(params, payload, stat.output)

    return {
        "kernel": kind,
        "params": params,
        "k": k,
        "exact": frontend.exact,
        "wall_s_scalar": wall_scalar,
        "wall_s_batched": wall_batched,
        "wall_s_reference": wall_reference,
        "batch_speedup": (
            wall_scalar / wall_batched if wall_batched > 0 else float("inf")
        ),
        "jobs_per_s_batched": (
            k / wall_batched if wall_batched > 0 else float("inf")
        ),
    }


def run_bench(
    quick: bool = False, output: Path | str = DEFAULT_OUTPUT
) -> list[dict]:
    """Bench every registered kernel and write ``BENCH_kernels.json``."""
    from repro.compile.frontends import frontend_names

    k = QUICK_K if quick else FULL_K
    repeats = 1 if quick else 3
    entries = [
        bench_kernel(kind, k, repeats) for kind in frontend_names()
    ]
    output = Path(output)
    output.write_text(json.dumps(entries, indent=2) + "\n")
    return entries


def check_floors(entries: list[dict]) -> None:
    """Raise if any kernel regressed below its :data:`SPEEDUP_FLOORS` bar."""
    failures = [
        f"{e['kernel']}: batch speedup {e['batch_speedup']:.2f}x "
        f"< floor {SPEEDUP_FLOORS[e['kernel']]:.1f}x"
        for e in entries
        if e["kernel"] in SPEEDUP_FLOORS
        and e["batch_speedup"] < SPEEDUP_FLOORS[e["kernel"]]
    ]
    if failures:
        raise AssertionError("kernel speedup regression: " + "; ".join(failures))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    entries = run_bench(quick=args.quick, output=args.output)
    width = max(len(e["kernel"]) for e in entries)
    print(f"wrote {args.output}")
    for e in entries:
        print(
            f"{e['kernel']:<{width}}  K={e['k']:<3d} "
            f"scalar {e['wall_s_scalar'] * 1e3:8.2f} ms  "
            f"batched {e['wall_s_batched'] * 1e3:8.2f} ms  "
            f"speedup {e['batch_speedup']:5.2f}x  "
            f"({e['jobs_per_s_batched']:.0f} jobs/s)"
        )
    if not args.quick:
        check_floors(entries)


if __name__ == "__main__":
    main()
