"""Fig. 12: link-cost influence — throughput vs column count."""

from conftest import save_artifact

from repro.experiments import fig12


def test_fig12_link_cost_influence(benchmark):
    series = benchmark(fig12.run)
    # cheap links: throughput rises with columns
    cheap = [v for _, v in series[0]]
    assert cheap == sorted(cheap)
    # expensive links: the paper's "opposite effect" — the ten-column
    # design is now the worst and the single column beats it
    pricey = [v for _, v in series[1500]]
    assert min(pricey) == pricey[-1]  # 10 columns slowest
    assert pricey[0] > pricey[-1]
    save_artifact("fig12", fig12.render())
