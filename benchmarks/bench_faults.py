"""Fault-tolerance benchmark: scrub overhead, latency, repair policies.

Runs one reproducible Poisson SEU campaign over a fabric FFT at several
scrub periods and writes a machine-readable ``BENCH_faults.json``::

    {"workload": {...}, "baseline": {...},
     "scrub_period_sweep": [{"scrub_period": 1, "overhead_vs_baseline": ...,
                             "outputs_match": true, ...}, ...],
     "detection_latency_ns": {...}, "mttr_ns": {...},
     "repair_policy": {"partial": {...}, "full": {...}, "speedup": ...},
     "acceptance": {...}}

Three questions, one artifact:

* **Runtime overhead vs. scrub period** — every campaign replays the
  *same* seeded fault timeline; only the scrub cadence changes.  Period
  0 is the unprotected baseline (faults run free), period 1 scrubs at
  every epoch boundary and guarantees bit-exact outputs, larger periods
  trade output protection for ICAP bandwidth.
* **Detection latency distribution** — injection-to-detection times of
  every detected fault in the period-1 campaign (scrubbing is the
  detector, so latency is bounded by the inter-scrub interval).
* **Partial repair vs. full reload** — the same period-1 campaign run
  under both repair policies; partial rewrites only the words that
  differ from the verified checkpoint, full reloads every affected tile
  wholesale.  The acceptance bar is a >= 2x modeled ICAP-time win.

Everything is simulated fabric time — **no wall-clock fields** — so two
runs of this benchmark produce byte-identical JSON.

Run directly (``PYTHONPATH=src python benchmarks/bench_faults.py``) or
through :func:`run_bench` from the smoke test with a reduced workload.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Committed-benchmark workload shape.
DEFAULT_N = 64
DEFAULT_M = 16
DEFAULT_COLS = 1
DEFAULT_SEED = 17
#: One SEU every ~20 us of fabric time, on average.
DEFAULT_RATE_PER_NS = 1.0 / 20_000.0
#: Scrub cadences swept (0 = unprotected baseline).
DEFAULT_PERIODS = (0, 1, 2, 4, 8)


def _build_workload(n: int, m: int, cols: int, seed: int):
    """The FFT under test: plan, input, epoch schedule factory."""
    import numpy as np

    from repro.kernels.fft.decompose import FFTPlan
    from repro.kernels.fft.runner import FabricFFT

    plan = FFTPlan(n, m, cols)
    fft = FabricFFT(plan)
    rng = np.random.default_rng(seed)
    x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * 0.05
    return plan, fft, x


def _fault_free_run(plan, fft, x) -> tuple:
    """Reference run on a clean fabric: (golden output, total_ns, reconfig_ns)."""
    from repro.fabric.icap import IcapPort
    from repro.fabric.mesh import Mesh
    from repro.fabric.rtms import RuntimeManager

    mesh = Mesh(plan.rows, plan.cols)
    rtms = RuntimeManager(mesh, IcapPort())
    rtms.execute(fft.transform_epochs(x, tag=""))
    return fft.read_output(mesh), rtms.now_ns, rtms.icap.total_busy_ns


def _campaign(
    plan,
    fft,
    x,
    *,
    seed: int,
    rate_per_ns: float,
    window_ns: float,
    scrub_period: int,
    repair_policy: str = "partial",
):
    """One seeded campaign; returns (CampaignResult, output array)."""
    from repro.fabric.icap import IcapPort
    from repro.fabric.mesh import Mesh
    from repro.fabric.rtms import RuntimeManager
    from repro.faults import (
        CampaignConfig,
        FaultInjector,
        FaultTarget,
        ReadbackScrubber,
        run_campaign,
    )

    mesh = Mesh(plan.rows, plan.cols)
    rtms = RuntimeManager(mesh, IcapPort())
    injector = FaultInjector(mesh, seed=seed)
    # DMEM-only: data corruption propagates silently when unprotected,
    # which is exactly the contrast the sweep is after (an unscrubbed
    # instruction fault would abort execution instead of corrupting it).
    injector.schedule_poisson(
        rate_per_ns=rate_per_ns,
        until_ns=window_ns,
        targets=(FaultTarget.DMEM,),
    )
    result = run_campaign(
        rtms,
        fft.transform_epochs(x, tag=""),
        injector,
        ReadbackScrubber(),
        CampaignConfig(scrub_period=scrub_period, repair_policy=repair_policy),
    )
    return result, fft.read_output(mesh), rtms


def _distribution(values: list) -> dict:
    values = sorted(float(v) for v in values)
    if not values:
        return {"samples": 0, "min_ns": 0.0, "mean_ns": 0.0,
                "median_ns": 0.0, "max_ns": 0.0, "values_ns": []}
    return {
        "samples": len(values),
        "min_ns": values[0],
        "mean_ns": sum(values) / len(values),
        "median_ns": float(statistics.median(values)),
        "max_ns": values[-1],
        "values_ns": values,
    }


def _policy_entry(result) -> dict:
    repair_ns = sum(r.repair_ns for r in result.repairs)
    return {
        "repairs": len(result.repairs),
        "rollbacks": result.rollbacks,
        "repair_ns": repair_ns,
        "mean_repair_ns": repair_ns / len(result.repairs)
        if result.repairs
        else 0.0,
        "total_ns": result.total_ns,
        "scrub_ns": result.scrub_ns,
    }


def run_bench(
    n: int = DEFAULT_N,
    m: int = DEFAULT_M,
    cols: int = DEFAULT_COLS,
    seed: int = DEFAULT_SEED,
    rate_per_ns: float = DEFAULT_RATE_PER_NS,
    periods: tuple = DEFAULT_PERIODS,
    output: Path | str = DEFAULT_OUTPUT,
) -> dict:
    """Sweep the fault campaign and write ``BENCH_faults.json``."""
    import numpy as np

    from repro.faults.campaign import partial_vs_full_repair_ns

    plan, fft, x = _build_workload(n, m, cols, seed)
    golden, golden_ns, golden_reconfig_ns = _fault_free_run(plan, fft, x)
    window_ns = golden_ns * 3  # faults keep striking through retries

    sweep = []
    period_one = None
    for period in periods:
        result, out, rtms = _campaign(
            plan, fft, x,
            seed=seed, rate_per_ns=rate_per_ns, window_ns=window_ns,
            scrub_period=period,
        )
        matches = bool(np.array_equal(out, golden))
        sweep.append({
            "scrub_period": period,
            "total_ns": result.total_ns,
            "scrub_ns": result.scrub_ns,
            "reconfig_ns": result.reconfig_ns,
            "scrub_bandwidth_fraction": result.scrub_bandwidth_fraction,
            "overhead_vs_baseline": result.total_ns / golden_ns - 1.0,
            "injected": result.injected,
            "detected": result.detected,
            "corrected": result.corrected,
            "masked": result.masked,
            "rollbacks": result.rollbacks,
            "retried_epochs": result.retried_epochs,
            "outputs_match": matches,
        })
        if period == 1:
            period_one = (result, rtms)

    assert period_one is not None, "sweep must include scrub_period=1"
    partial_result, partial_rtms = period_one

    # Same timeline, full-tile-reload repair policy.
    full_result, full_out, _ = _campaign(
        plan, fft, x,
        seed=seed, rate_per_ns=rate_per_ns, window_ns=window_ns,
        scrub_period=1, repair_policy="full",
    )
    partial_entry = _policy_entry(partial_result)
    full_entry = _policy_entry(full_result)
    measured_speedup = (
        full_entry["mean_repair_ns"] / partial_entry["mean_repair_ns"]
        if partial_entry["mean_repair_ns"] > 0
        else 0.0
    )
    # Modeled single-SEU comparison: rewrite one 48-bit word vs. reload
    # the whole tile image through the ICAP.
    active = [t.coord for t in partial_rtms.mesh]
    modeled_partial, modeled_full = partial_vs_full_repair_ns(
        partial_rtms, None, active, corrupt_words=1
    )
    modeled_speedup = (
        modeled_full / modeled_partial if modeled_partial > 0 else 0.0
    )

    protected = next(e for e in sweep if e["scrub_period"] == 1)
    report = {
        "workload": {
            "kernel": "fft",
            "n": n,
            "m": m,
            "cols": cols,
            "seed": seed,
            "fault_rate_per_ns": rate_per_ns,
            "fault_window_ns": window_ns,
            "targets": ["dmem"],
        },
        "baseline": {
            "total_ns": golden_ns,
            "reconfig_ns": golden_reconfig_ns,
        },
        "scrub_period_sweep": sweep,
        "detection_latency_ns": _distribution(
            partial_result.detection_latencies_ns
        ),
        "mttr_ns": _distribution(partial_result.mttr_ns),
        "repair_policy": {
            "partial": partial_entry,
            "full": full_entry,
            "measured_speedup": measured_speedup,
            "modeled": {
                "partial_ns": modeled_partial,
                "full_ns": modeled_full,
                "speedup": modeled_speedup,
            },
            "outputs_agree": bool(np.array_equal(full_out, golden)),
        },
        "acceptance": {
            "protected_outputs_match": protected["outputs_match"],
            "partial_speedup_ge_2x": measured_speedup >= 2.0
            and modeled_speedup >= 2.0,
        },
    }
    output = Path(output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> int:
    report = run_bench()
    print(f"wrote {DEFAULT_OUTPUT}")
    base = report["baseline"]["total_ns"]
    print(f"fault-free baseline: {base / 1e3:.1f} us")
    for entry in report["scrub_period_sweep"]:
        print(
            f"scrub_period {entry['scrub_period']:>2}  "
            f"overhead {100 * entry['overhead_vs_baseline']:6.1f}%  "
            f"scrub share {100 * entry['scrub_bandwidth_fraction']:5.1f}%  "
            f"detected {entry['detected']:2d}/{entry['injected']:2d}  "
            f"exact {'yes' if entry['outputs_match'] else 'NO'}"
        )
    lat = report["detection_latency_ns"]
    print(
        f"detection latency: n={lat['samples']} "
        f"mean {lat['mean_ns']:.0f} ns  median {lat['median_ns']:.0f} ns  "
        f"max {lat['max_ns']:.0f} ns"
    )
    pol = report["repair_policy"]
    print(
        f"repair: partial {pol['partial']['mean_repair_ns']:.0f} ns/rollback "
        f"vs full {pol['full']['mean_repair_ns']:.0f} ns/rollback "
        f"-> {pol['measured_speedup']:.1f}x measured, "
        f"{pol['modeled']['speedup']:.1f}x modeled"
    )
    ok = all(report["acceptance"].values())
    print(f"acceptance: {report['acceptance']} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
