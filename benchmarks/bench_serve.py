"""Serving benchmark: reconfiguration-affinity vs cold-FIFO placement.

Replays one reproducible mixed 200-job FFT+JPEG trace (all jobs present
at t=0) against a pool of simulated fabrics under both scheduling
policies and writes a machine-readable ``BENCH_serve.json``::

    {"trace": {"jobs": 200, "seed": 0, ...},
     "policies": [{"policy": "affinity", "reconfig_ns": ..., ...},
                  {"policy": "cold_fifo", ...}],
     "reconfig_ratio": 2.9}

``reconfig_ratio`` is total Eq. 1 term-B (reconfiguration) time under
cold FIFO divided by the same under affinity scheduling — the headline
amortization win.  The replay runs in deterministic simulated fabric
time (:func:`repro.serve.scheduler.simulate_trace`): jobs execute for
real on the pool's sessions, so the reconfiguration totals are ICAP
measurements, not model outputs, and identical across runs and machines
for a given seed.

Run directly (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
through :func:`run_bench` from the tier-1 smoke test with a reduced
trace.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Committed-benchmark trace shape (the ISSUE's 200-job mixed trace).
DEFAULT_JOBS = 200
DEFAULT_POOL = 4
DEFAULT_SEED = 0
DEFAULT_FFT_FRACTION = 0.5

POLICIES = ("affinity", "cold_fifo")


def _replay(policy_name: str, n_jobs: int, pool_size: int, seed: int,
            fft_fraction: float) -> dict:
    """One policy's replay of the trace on a fresh pool."""
    from repro.serve.client import generate_trace
    from repro.serve.pool import FabricPool
    from repro.serve.scheduler import make_policy, simulate_trace

    trace = generate_trace(
        n_jobs=n_jobs, seed=seed, fft_fraction=fft_fraction
    )
    pool = FabricPool(pool_size)
    t0 = time.perf_counter()
    result = simulate_trace(trace, pool, make_policy(policy_name))
    wall_s = time.perf_counter() - t0
    return {
        "policy": result.policy,
        "jobs": len(result.jobs),
        "warm_jobs": result.warm_jobs,
        "cold_jobs": result.cold_jobs,
        "cold_starts": pool.total_cold_starts,
        "reconfig_ns": result.total_reconfig_ns,
        "reconfig_saved_ns": result.reconfig_saved_ns,
        "sim_ns": result.total_sim_ns,
        "makespan_ns": result.makespan_ns,
        "mean_wait_ns": result.mean_wait_ns,
        "utilization": result.utilization(pool_size),
        "wall_s": wall_s,
    }


def run_bench(
    n_jobs: int = DEFAULT_JOBS,
    pool_size: int = DEFAULT_POOL,
    seed: int = DEFAULT_SEED,
    fft_fraction: float = DEFAULT_FFT_FRACTION,
    output: Path | str = DEFAULT_OUTPUT,
) -> dict:
    """Replay the trace under every policy and write ``BENCH_serve.json``."""
    policies = [
        _replay(name, n_jobs, pool_size, seed, fft_fraction)
        for name in POLICIES
    ]
    by_name = {entry["policy"]: entry for entry in policies}
    affinity = by_name["affinity"]["reconfig_ns"]
    cold = by_name["cold_fifo"]["reconfig_ns"]
    report = {
        "trace": {
            "jobs": n_jobs,
            "pool_size": pool_size,
            "seed": seed,
            "fft_fraction": fft_fraction,
        },
        "policies": policies,
        "reconfig_ratio": cold / affinity if affinity > 0 else float("inf"),
    }
    output = Path(output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_bench()
    print(f"wrote {DEFAULT_OUTPUT}")
    for entry in report["policies"]:
        print(
            f"{entry['policy']:<10}  warm {entry['warm_jobs']:4d}  "
            f"cold {entry['cold_jobs']:3d}  "
            f"reconfig {entry['reconfig_ns'] / 1000:10.1f} us  "
            f"makespan {entry['makespan_ns'] / 1e6:7.2f} ms  "
            f"wall {entry['wall_s']:.2f} s"
        )
    print(f"reconfig ratio (cold_fifo / affinity): "
          f"{report['reconfig_ratio']:.2f}x")


if __name__ == "__main__":
    main()
