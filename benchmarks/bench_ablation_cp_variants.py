"""A5: memory-optimal vs time-optimal copy processes (Table 3's two groups)."""

from conftest import save_artifact

from repro.dse.report import format_table
from repro.experiments import ablations


def test_ablation_copy_variants(benchmark):
    rows = benchmark(ablations.copy_variant_ablation)
    for row in rows:
        assert row["speedup"] > 10  # unrolling wins big on runtime ...
        assert row["imem_cost_words"] > 0  # ... at instruction-memory cost
    save_artifact(
        "ablation_cp",
        "A5: copy-process variants\n" + format_table(rows),
    )
