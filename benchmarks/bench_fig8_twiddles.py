"""Fig. 8: the 64-point / M=8 twiddle matrix and its classification."""

from conftest import save_artifact

from repro.experiments import fig8


def test_fig8_twiddle_schedule(benchmark):
    result = benchmark(fig8.run)
    assert result["reload_words"] < result["naive_reload_words"]
    summary = result["stage_summary"]
    assert summary[0]["red"] == 8          # first column preloaded
    assert summary[4]["blue"] == 8         # last two columns resident
    assert summary[5]["blue"] == 8
    save_artifact("fig8", fig8.render())
